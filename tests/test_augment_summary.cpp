#include <gtest/gtest.h>

#include "alf/alf_conv.hpp"
#include "core/check.hpp"
#include "data/augment.hpp"
#include "models/summary.hpp"
#include "models/zoo.hpp"

namespace alf {
namespace {

Tensor ramp_batch(size_t n, size_t c, size_t h, size_t w) {
  Tensor x({n, c, h, w});
  for (size_t i = 0; i < x.numel(); ++i) x.at(i) = static_cast<float>(i);
  return x;
}

TEST(Augment, HflipReversesRows) {
  Tensor x = ramp_batch(2, 1, 2, 3);
  hflip_image(x, 0);
  // First image rows reversed.
  EXPECT_FLOAT_EQ(x.at4(0, 0, 0, 0), 2.0f);
  EXPECT_FLOAT_EQ(x.at4(0, 0, 0, 2), 0.0f);
  EXPECT_FLOAT_EQ(x.at4(0, 0, 1, 0), 5.0f);
  // Second image untouched.
  EXPECT_FLOAT_EQ(x.at4(1, 0, 0, 0), 6.0f);
}

TEST(Augment, HflipTwiceIsIdentity) {
  Tensor x = ramp_batch(1, 3, 4, 5);
  Tensor orig = x;
  hflip_image(x, 0);
  hflip_image(x, 0);
  for (size_t i = 0; i < x.numel(); ++i) EXPECT_EQ(x.at(i), orig.at(i));
}

TEST(Augment, ShiftMovesAndZeroFills) {
  Tensor x = ramp_batch(1, 1, 3, 3);
  shift_image(x, 0, 1, 0);  // down by one row
  // New top row is zero padding.
  EXPECT_FLOAT_EQ(x.at4(0, 0, 0, 0), 0.0f);
  EXPECT_FLOAT_EQ(x.at4(0, 0, 0, 2), 0.0f);
  // Old row 0 moved to row 1.
  EXPECT_FLOAT_EQ(x.at4(0, 0, 1, 0), 0.0f + 0.0f);  // was value 0
  EXPECT_FLOAT_EQ(x.at4(0, 0, 1, 1), 1.0f);
  EXPECT_FLOAT_EQ(x.at4(0, 0, 2, 2), 5.0f);
}

TEST(Augment, ShiftZeroIsNoop) {
  Tensor x = ramp_batch(1, 2, 3, 3);
  Tensor orig = x;
  shift_image(x, 0, 0, 0);
  for (size_t i = 0; i < x.numel(); ++i) EXPECT_EQ(x.at(i), orig.at(i));
}

TEST(Augment, NegativeShiftOppositeDirection) {
  Tensor x = ramp_batch(1, 1, 3, 3);
  shift_image(x, 0, 0, -1);  // left
  EXPECT_FLOAT_EQ(x.at4(0, 0, 0, 0), 1.0f);
  EXPECT_FLOAT_EQ(x.at4(0, 0, 0, 2), 0.0f);  // right column padded
}

TEST(Augment, BatchAugmentDeterministic) {
  Tensor a = ramp_batch(4, 3, 8, 8);
  Tensor b = a;
  AugmentConfig cfg;
  Rng r1(5), r2(5);
  augment_batch(a, cfg, r1);
  augment_batch(b, cfg, r2);
  for (size_t i = 0; i < a.numel(); ++i) EXPECT_EQ(a.at(i), b.at(i));
}

TEST(Augment, RespectsMaxShiftBound) {
  // With max_shift = 0 and no flip the batch is unchanged.
  Tensor x = ramp_batch(3, 1, 4, 4);
  Tensor orig = x;
  AugmentConfig cfg;
  cfg.hflip = false;
  cfg.max_shift = 0;
  Rng rng(7);
  augment_batch(x, cfg, rng);
  for (size_t i = 0; i < x.numel(); ++i) EXPECT_EQ(x.at(i), orig.at(i));
}

TEST(Summary, CountsMatchParams) {
  Rng rng(1);
  ModelConfig mc;
  mc.base_width = 4;
  auto model = build_plain20(mc, rng, standard_conv_maker(mc.init, &rng));
  EXPECT_EQ(count_parameters(*model), [&] {
    size_t t = 0;
    for (Param* p : model->params()) t += p->value.numel();
    return t;
  }());
  const auto rows = summarize(*model);
  size_t sum = 0;
  for (const auto& r : rows) sum += r.param_count;
  EXPECT_EQ(sum, count_parameters(*model));
}

TEST(Summary, ListsConvAndBnAndFc) {
  Rng rng(2);
  ModelConfig mc;
  mc.base_width = 4;
  auto model = build_resnet20(mc, rng, standard_conv_maker(mc.init, &rng));
  const auto rows = summarize(*model);
  size_t convs = 0, bns = 0, fcs = 0;
  for (const auto& r : rows) {
    if (r.kind == "conv") ++convs;
    if (r.kind == "bn") ++bns;
    if (r.kind == "linear") ++fcs;
  }
  EXPECT_EQ(convs, 21u);  // 19 + 2 projections
  EXPECT_EQ(bns, 21u);
  EXPECT_EQ(fcs, 1u);
}

TEST(Summary, TableRendersTotals) {
  Rng rng(3);
  Sequential model("tiny");
  model.emplace<Conv2d>("c", 1, 2, 3, 1, 1, Init::kHe, rng);
  const std::string s = summary_table(model);
  EXPECT_NE(s.find("tiny"), std::string::npos);
  EXPECT_NE(s.find("TOTAL"), std::string::npos);
  EXPECT_NE(s.find("18"), std::string::npos);  // 2*1*3*3 params
  EXPECT_NE(s.find("2x1x3x3"), std::string::npos);
}

TEST(Summary, AlfBlockCounted) {
  Rng rng(4);
  AlfConfig cfg;
  Sequential model("alfm");
  std::vector<AlfConv*> blocks;
  auto maker = make_alf_conv_maker(cfg, &rng, &blocks);
  model.add(maker("a1", 2, 4, 3, 1, 1));
  const auto rows = summarize(model);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].kind, std::string("alf_conv"));
  // W (4*2*3*3) + Wexp (4*4).
  EXPECT_EQ(rows[0].param_count, 72u + 16u);
}

}  // namespace
}  // namespace alf
