// Fine-tuning with frozen sparsity: projected SGD that re-zeroes pruned
// filters after every optimizer step, so baseline pruning methods can
// recover accuracy without re-growing pruned channels.
#pragma once

#include "data/synthetic.hpp"
#include "nn/sequential.hpp"
#include "optim/sgd.hpp"
#include "prune/structured.hpp"

namespace alf {

/// Fine-tuning hyper-parameters.
struct FinetuneConfig {
  size_t epochs = 5;
  size_t batch_size = 32;
  SgdConfig sgd{0.01f, 0.9f, 1e-4f};
  uint64_t seed = 21;
  bool verbose = false;
};

/// Fine-tunes `model` while keeping the plan's pruned filters at zero.
/// Returns the final test accuracy.
double finetune_pruned(Sequential& model, const std::vector<Conv2d*>& convs,
                       const PrunePlan& plan,
                       const SyntheticImageDataset& train_set,
                       const SyntheticImageDataset& test_set,
                       const FinetuneConfig& config);

}  // namespace alf
