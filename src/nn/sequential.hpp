// Sequential container and residual block.
//
// All reproduced models (Plain-20, ResNet-20/18) are expressed as a
// Sequential of layers, where residual stages are ResidualBlock layers that
// internally contain two conv units and an optional projection shortcut.
#pragma once

#include <functional>

#include "nn/layer.hpp"

namespace alf {

/// Ordered list of layers, itself a Layer.
class Sequential : public Layer {
 public:
  explicit Sequential(std::string name = "seq") : name_(std::move(name)) {}

  const char* kind() const override { return "sequential"; }
  const std::string& name() const override { return name_; }

  /// Appends a layer; returns a non-owning pointer for convenience.
  Layer* add(LayerPtr layer);

  /// Typed add: seq.emplace<Conv2d>(...).
  template <typename T, typename... Args>
  T* emplace(Args&&... args) {
    auto layer = std::make_unique<T>(std::forward<Args>(args)...);
    T* raw = layer.get();
    add(std::move(layer));
    return raw;
  }

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Param*> params() override;

  size_t size() const { return layers_.size(); }
  Layer* layer(size_t i) { return layers_.at(i).get(); }
  const Layer* layer(size_t i) const { return layers_.at(i).get(); }

  /// Depth-first visit of all layers (descending into containers).
  void visit(const std::function<void(Layer&)>& fn);

 private:
  std::string name_;
  std::vector<LayerPtr> layers_;
};

/// Residual block: out = relu(body(x) + shortcut(x)).
///
/// `shortcut` may be empty (identity). Both sub-networks are Sequentials so
/// that the body convs can be plain Conv2d or AlfConv interchangeably.
class ResidualBlock : public Layer {
 public:
  ResidualBlock(std::string name, std::unique_ptr<Sequential> body,
                std::unique_ptr<Sequential> shortcut);

  const char* kind() const override { return "residual"; }
  const std::string& name() const override { return name_; }

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Param*> params() override;

  Sequential& body() { return *body_; }
  const Sequential& body() const { return *body_; }
  Sequential* shortcut() { return shortcut_.get(); }
  const Sequential* shortcut() const { return shortcut_.get(); }

 private:
  std::string name_;
  std::unique_ptr<Sequential> body_;
  std::unique_ptr<Sequential> shortcut_;  // nullptr = identity
  Tensor cached_sum_;                     // pre-ReLU sum for backward
};

}  // namespace alf
