// Fig. 3 — hardware-model estimates on the Eyeriss-like accelerator:
// per-layer energy breakdown (Register / Global Buffer / DRAM) and
// normalized latency for vanilla and ALF-compressed Plain-20 / ResNet-20,
// batch size 16.
//
// Paper findings to reproduce:
//  * register-file energy dominates, especially in deeper layers;
//  * ALF adds DRAM energy in early layers (expansion-layer feature maps)
//    but wins overall: ~29% lower energy, ~41% lower latency;
//  * some compressed layers can lose PE utilization (the conv312 anomaly).
#include <cstdio>

#include "bench_common.hpp"
#include "hwmodel/mapper.hpp"

using namespace alf;
using namespace alf::bench;

namespace {

/// Sums evaluations, merging ALF code+expansion pairs under the code conv's
/// name so rows align with the vanilla layer names.
struct LayerRow {
  std::string name;
  double e_rf = 0, e_gb = 0, e_dram = 0, cycles = 0, util = 0;
  int parts = 0;
};

std::vector<LayerRow> eval_model(const ModelCost& cost, size_t batch,
                                 const EyerissConfig& arch,
                                 const MapperConfig& mcfg) {
  std::vector<LayerRow> rows;
  for (const LayerCost& l : cost.layers) {
    if (l.kind == "fc") continue;
    const LayerEval ev = map_layer(workload_from_cost(l, batch), arch, mcfg);
    std::string base = l.name;
    if (l.kind == "conv_exp" && base.size() > 4)
      base = base.substr(0, base.size() - 4);  // strip "_exp"
    if (!rows.empty() && rows.back().name == base) {
      LayerRow& r = rows.back();
      r.e_rf += ev.e_rf;
      r.e_gb += ev.e_gb;
      r.e_dram += ev.e_dram;
      r.cycles += ev.cycles;
      r.util = std::min(r.util, ev.utilization);
      r.parts++;
    } else {
      rows.push_back({base, ev.e_rf, ev.e_gb, ev.e_dram, ev.cycles,
                      ev.utilization, 1});
    }
  }
  return rows;
}

double total_energy(const std::vector<LayerRow>& rows) {
  double t = 0;
  for (const auto& r : rows) t += r.e_rf + r.e_gb + r.e_dram;
  return t;
}

double total_cycles(const std::vector<LayerRow>& rows) {
  double t = 0;
  for (const auto& r : rows) t += r.cycles;
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  const Scale s = parse_scale(argc, argv);
  std::printf("Fig. 3: Eyeriss hardware-model estimates, batch 16 "
              "(scale=%s)\n\n", s.name);

  // --- Obtain ALF per-layer compression by training at reduced scale. ---
  const DataConfig task = cifar_task(s);
  SyntheticImageDataset train(task, s.train_n, 1);
  SyntheticImageDataset test(task, s.test_n, 2);

  auto train_alf_fracs = [&](bool residual) {
    Rng rng(23);
    ModelConfig mc;
    mc.base_width = s.width;
    mc.in_hw = s.hw;
    AlfConfig acfg = alf_config(s);
    std::vector<AlfConv*> blocks;
    auto maker = make_alf_conv_maker(acfg, &rng, &blocks);
    auto model = residual ? build_resnet20(mc, rng, maker)
                          : build_plain20(mc, rng, maker);
    TrainConfig tcfg = train_config(s);
    const auto hist = Trainer(*model, train, test, tcfg).run();
    std::printf("  remaining filters %.1f%%, acc %.1f%%\n",
                100.0 * hist.back().remaining_filters,
                100.0 * hist.back().test_acc);
    return fractions_by_name(blocks);
  };

  std::printf("training ALF Plain-20...\n");
  std::fflush(stdout);
  const auto plain_fracs = train_alf_fracs(false);
  std::printf("training ALF ResNet-20...\n");
  std::fflush(stdout);
  const auto resnet_fracs = train_alf_fracs(true);

  // --- Full-scale costs, batch 16 (the paper's setup). ---
  const size_t batch = 16;
  const EyerissConfig arch;
  MapperConfig mcfg;

  struct ModelEntry {
    std::string label;
    ModelCost cost;
  };
  const ModelEntry models[] = {
      {"Plain-20", cost_plain20()},
      {"ALF-Plain-20",
       apply_alf_fractions(cost_plain20(), plain_fracs, "ALF-Plain-20")},
      {"ResNet-20", cost_resnet20()},
      {"ALF-ResNet-20",
       apply_alf_fractions(cost_resnet20(), resnet_fracs, "ALF-ResNet-20")},
  };

  std::vector<std::vector<LayerRow>> evals;
  for (const ModelEntry& m : models) {
    std::printf("mapping %s on Eyeriss model...\n", m.label.c_str());
    std::fflush(stdout);
    evals.push_back(eval_model(m.cost, batch, arch, mcfg));
  }

  for (size_t i = 0; i < 4; ++i) {
    Table t("Fig. 3 — " + models[i].label +
            " (energy normalized to 1 RF read; latency in cycles at "
            "1 word/cycle)");
    t.set_header({"layer", "E_register", "E_globalbuf", "E_dram", "E_total",
                  "latency", "PE util[%]"});
    for (const LayerRow& r : evals[i]) {
      t.add_row({r.name, Table::fmt(r.e_rf / 1e6, 2) + "e6",
                 Table::fmt(r.e_gb / 1e6, 2) + "e6",
                 Table::fmt(r.e_dram / 1e6, 2) + "e6",
                 Table::fmt((r.e_rf + r.e_gb + r.e_dram) / 1e6, 2) + "e6",
                 Table::fmt(r.cycles / 1e6, 3) + "e6",
                 Table::fmt(100.0 * r.util, 1)});
    }
    t.print();
    std::printf("\n");
  }

  Table summary("Fig. 3 — totals and ALF reductions");
  summary.set_header({"model", "energy[1e6 RF-reads]", "latency[1e6 cycles]",
                      "energy vs vanilla", "latency vs vanilla"});
  for (size_t i = 0; i < 4; ++i) {
    const double e = total_energy(evals[i]);
    const double c = total_cycles(evals[i]);
    std::string ecmp = "-", ccmp = "-";
    if (i % 2 == 1) {  // ALF variant follows its vanilla counterpart
      const double eb = total_energy(evals[i - 1]);
      const double cb = total_cycles(evals[i - 1]);
      auto delta = [](double frac) {
        const double pct = 100.0 * (1.0 - frac);
        return (pct >= 0 ? "-" : "+") + Table::fmt(std::abs(pct), 1) + "%";
      };
      ecmp = delta(e / eb);
      ccmp = delta(c / cb);
    }
    summary.add_row({models[i].label, Table::fmt(e / 1e6, 1),
                     Table::fmt(c / 1e6, 2), ecmp, ccmp});
  }
  summary.print();
  summary.write_csv("fig3.csv");

  std::printf("\nPaper reference: ALF-compressed execution showed ~29%% "
              "lower energy and ~41%% lower latency overall, with DRAM "
              "overhead in early layers from the expansion feature maps.\n");
  return 0;
}
