// The "simd" backend: explicitly vectorized GEMM with panel packing.
//
// The inner kernel is a 4x16 register tile — four C rows times two 8-float
// vectors — expressed in portable GCC/Clang vector extensions (no
// intrinsics): the k-loop broadcasts one packed A element per row and FMAs
// it against two B vectors, keeping 8 vector accumulators live. A panels
// are packed per (row-block, k-block) into MR-interleaved strips, so both
// orientations of A (and in particular the strided trans_a reads of the
// backward pass) stream contiguously through the kernel; trans_b packs the
// active B strip once per k-block for the same reason.
//
// Blocking mirrors the scalar backend: a global k-block grid fixes the
// accumulation order of every C element independent of the thread
// partition, so results are bit-identical for any thread count. The row
// range is the only parallel axis.
//
// Build/ISA: CMake's ALF_SIMD=ON compiles this file with wider vector
// flags (-mavx2 -mfma) when the compiler supports them; simd_backend()
// then gates registration on runtime CPU support, so a binary built on a
// new machine still boots on an old one (the registry falls back to
// "scalar"). Without vector extensions (non-GCC/Clang) the backend is
// absent entirely.
#include <algorithm>
#include <cstring>
#include <vector>

#include "core/parallel.hpp"
#include "kernels/internal.hpp"

namespace alf::kernels {

#if defined(__GNUC__) || defined(__clang__)

namespace {

typedef float v8 __attribute__((vector_size(32)));

constexpr size_t kMr = 4;    // C rows per register tile
constexpr size_t kNr = 16;   // C cols per register tile (two v8)
constexpr size_t kMc = 64;   // rows packed per A block (~64KB with kKc)
constexpr size_t kKc = 256;  // k extent of one block (global grid)

// Below this many multiply-adds the packing overhead outweighs the wider
// kernel; delegate to the scalar backend (also covers degenerate shapes).
constexpr size_t kScalarCutoffMadds = size_t{1} << 12;

// Same per-worker arithmetic floor as the scalar backend.
constexpr size_t kMaddsPerWorker = size_t{1} << 16;

inline v8 loadu(const float* p) {
  v8 v;
  __builtin_memcpy(&v, p, sizeof(v));
  return v;
}

inline void storeu(float* p, v8 v) { __builtin_memcpy(p, &v, sizeof(v)); }

inline v8 splat(float s) { return v8{s, s, s, s, s, s, s, s}; }

/// Packs rows [i0, i0+rows) x k-range [k0, k0+kb) of op(A) into kMr-wide
/// panels: dst panel p holds rows i0+p*kMr.., laid out [kk][r] so the
/// microkernel reads one contiguous kMr group per k step. Short panels are
/// zero-padded (the padded lanes are computed and discarded).
void pack_a(const float* a, size_t lda, bool trans_a, size_t i0, size_t rows,
            size_t k0, size_t kb, float* dst) {
  for (size_t p = 0; p < rows; p += kMr) {
    const size_t pr = std::min(kMr, rows - p);
    float* panel = dst + p * kb;  // each panel is kb * kMr floats
    for (size_t kk = 0; kk < kb; ++kk) {
      for (size_t r = 0; r < kMr; ++r) {
        const size_t i = i0 + p + r;
        panel[kk * kMr + r] =
            r < pr ? (trans_a ? a[(k0 + kk) * lda + i] : a[i * lda + k0 + kk])
                   : 0.0f;
      }
    }
  }
}

/// The register tile: C[0:pr, j:j+16] += alpha * panel * B. `b` points at
/// the first B element of column j in the active k-block (leading dimension
/// ldb between k steps).
inline void micro_4x16(const float* panel, size_t kb, const float* b,
                       size_t ldb, float alpha, float* c, size_t ldc,
                       size_t pr) {
  v8 acc[kMr][2] = {};
  const float* bp = b;
  for (size_t kk = 0; kk < kb; ++kk) {
    const v8 b0 = loadu(bp);
    const v8 b1 = loadu(bp + 8);
    bp += ldb;
    const float* ap = panel + kk * kMr;
    for (size_t r = 0; r < kMr; ++r) {
      const v8 av = splat(ap[r]);
      acc[r][0] += av * b0;
      acc[r][1] += av * b1;
    }
  }
  const v8 va = splat(alpha);
  for (size_t r = 0; r < pr; ++r) {
    float* crow = c + r * ldc;
    storeu(crow, loadu(crow) + va * acc[r][0]);
    storeu(crow + 8, loadu(crow + 8) + va * acc[r][1]);
  }
}

/// Column tail (n % 16): scalar per-column accumulation over the same
/// packed panel, preserving the per-element k order of the vector path.
inline void micro_tail(const float* panel, size_t kb, const float* b,
                       size_t ldb, float alpha, float* c, size_t ldc,
                       size_t pr, size_t cols) {
  for (size_t j = 0; j < cols; ++j) {
    float acc[kMr] = {};
    const float* bp = b + j;
    for (size_t kk = 0; kk < kb; ++kk) {
      const float bv = bp[kk * ldb];
      const float* ap = panel + kk * kMr;
      for (size_t r = 0; r < kMr; ++r) acc[r] += ap[r] * bv;
    }
    for (size_t r = 0; r < pr; ++r) c[r * ldc + j] += alpha * acc[r];
  }
}

void gemm_simd(const float* pa, size_t lda, bool trans_a, const float* pb,
               size_t ldb, bool trans_b, float* pc, size_t ldc, size_t m,
               size_t k, size_t n, float alpha, float beta) {
  if (m * k * n < kScalarCutoffMadds || n < kNr / 2 || k == 0) {
    detail::gemm_scalar(pa, lda, trans_a, pb, ldb, trans_b, pc, ldc, m, k, n,
                        alpha, beta);
    return;
  }

  const size_t madds_per_row = std::max<size_t>(1, k * n);
  const size_t min_rows = std::max<size_t>(1, kMaddsPerWorker / madds_per_row);
  const bool inline_run =
      in_parallel_region() || m <= min_rows || parallel_threads() <= 1;

  // A parallel trans_b call would otherwise re-transpose the same B strip
  // once per worker per k-block (each worker's process_rows walks every
  // k-block); transpose the whole matrix once up front instead and run the
  // fast non-transposed path. Inline calls keep the cheaper per-k-block
  // strip packing below.
  thread_local std::vector<float> btrans;
  if (trans_b && !inline_run) {
    btrans.resize(k * n);
    for (size_t j = 0; j < n; ++j) {
      const float* bcol = pb + j * ldb;
      for (size_t kk = 0; kk < k; ++kk) btrans[kk * n + j] = bcol[kk];
    }
    pb = btrans.data();
    ldb = n;
    trans_b = false;
  }

  const auto process_rows = [&](size_t r0, size_t r1) {
    // Per-thread packing scratch, persistent across calls (pool workers
    // live for the process): an A block and, for trans_b, the active
    // [kb x n] B strip.
    thread_local std::vector<float> apack;
    thread_local std::vector<float> bpack;
    apack.resize(kMc * kKc);

    for (size_t i = r0; i < r1; ++i) {
      float* crow = pc + i * ldc;
      if (beta == 0.0f) {
        std::memset(crow, 0, n * sizeof(float));
      } else if (beta != 1.0f) {
        for (size_t j = 0; j < n; ++j) crow[j] *= beta;
      }
    }
    for (size_t k0 = 0; k0 < k; k0 += kKc) {
      const size_t kb = std::min(k, k0 + kKc) - k0;
      const float* bsrc;
      size_t ldb_eff;
      if (trans_b) {
        // B is stored [N, K]: transpose the active strip once so the
        // kernel streams it row-major like the non-transposed case.
        bpack.resize(kb * n);
        for (size_t j = 0; j < n; ++j) {
          const float* bcol = pb + j * ldb + k0;
          for (size_t kk = 0; kk < kb; ++kk) bpack[kk * n + j] = bcol[kk];
        }
        bsrc = bpack.data();
        ldb_eff = n;
      } else {
        bsrc = pb + k0 * ldb;
        ldb_eff = ldb;
      }
      for (size_t i0 = r0; i0 < r1; i0 += kMc) {
        const size_t rows = std::min(r1, i0 + kMc) - i0;
        pack_a(pa, lda, trans_a, i0, rows, k0, kb, apack.data());
        for (size_t p = 0; p < rows; p += kMr) {
          const size_t pr = std::min(kMr, rows - p);
          const float* panel = apack.data() + p * kb;
          float* cpan = pc + (i0 + p) * ldc;
          size_t j = 0;
          for (; j + kNr <= n; j += kNr)
            micro_4x16(panel, kb, bsrc + j, ldb_eff, alpha, cpan + j, ldc, pr);
          if (j < n)
            micro_tail(panel, kb, bsrc + j, ldb_eff, alpha, cpan + j, ldc, pr,
                       n - j);
        }
      }
    }
  };

  if (inline_run) {
    process_rows(0, m);
    return;
  }
  parallel_for_chunked(0, m, process_rows, min_rows);
}

/// The shared int8 body instantiated under this file's (possibly wider)
/// ISA flags — same exact integer math as detail::qgemm_int8, usually
/// auto-vectorized much harder.
void qgemm_simd(const int8_t* a, size_t lda, const int8_t* b, size_t ldb,
                float* c, size_t ldc, size_t m, size_t k, size_t n,
                const QgemmParams& p) {
  detail::qgemm_int8_body(a, lda, b, ldb, c, ldc, m, k, n, p);
}

/// True when the host CPU can execute the ISA this file was compiled for.
bool cpu_supported() {
#if defined(__AVX2__) && defined(__x86_64__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return true;  // baseline vector extensions only
#endif
}

}  // namespace

const KernelBackend* simd_backend() {
  if (!cpu_supported()) return nullptr;
  static const KernelBackend be{
      .name = "simd", .gemm = &gemm_simd, .qgemm = &qgemm_simd};
  return &be;
}

#else  // !(__GNUC__ || __clang__)

const KernelBackend* simd_backend() { return nullptr; }

#endif

}  // namespace alf::kernels
