// Standard 2-D convolution (NCHW, square kernel, zero padding, no bias —
// every conv in the reproduced models is followed by BatchNorm).
//
// Implementation: per-image im2col + GEMM. The filter bank is stored as
// [Co, Ci, K, K]; viewed as the matrix Wmat [Co, Ci*K*K] for the GEMM.
#pragma once

#include "nn/activations.hpp"
#include "nn/layer.hpp"
#include "tensor/init.hpp"
#include "tensor/ops.hpp"

namespace alf {

namespace kernels {
struct KernelBackend;
}  // namespace kernels

/// Plain convolution layer.
class Conv2d : public Layer {
 public:
  /// Creates a conv with filters initialized by `scheme`.
  Conv2d(std::string name, size_t in_c, size_t out_c, size_t kernel,
         size_t stride, size_t pad, Init scheme, Rng& rng);

  const char* kind() const override { return "conv"; }
  const std::string& name() const override { return name_; }

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Param*> params() override { return {&w_}; }

  size_t in_channels() const { return in_c_; }
  size_t out_channels() const { return out_c_; }
  size_t kernel() const { return kernel_; }
  size_t stride() const { return stride_; }
  size_t pad() const { return pad_; }

  /// Filter bank [Co, Ci, K, K].
  Param& weight() { return w_; }
  const Param& weight() const { return w_; }

 private:
  std::string name_;
  size_t in_c_, out_c_, kernel_, stride_, pad_;
  Param w_;
  Tensor cached_x_;  // input cached for backward (im2col recomputed)
};

/// Functional convolution used by Conv2d and AlfConv.
///
/// x: [N, Ci, H, W]; w viewed as [Co, Ci*K*K]; returns [N, Co, Ho, Wo].
Tensor conv2d_forward(const Tensor& x, const Tensor& w_mat, const ConvGeom& g,
                      size_t out_c);

/// Single-image fused conv kernel: unfolds `x_img` (Ci*H*W floats) into
/// `col_scratch` (col_rows()*col_cols() floats), multiplies by `w_mat`
/// [Co, Ci*K*K], then applies the epilogue out = act(out + bias) in place.
/// `bias` may be nullptr. Stateless and allocation-free — this is the
/// kernel both the layer path (bias=nullptr, act=kNone) and the engine's
/// fused conv+BN+ReLU steps run. `be` pins the kernel backend for the GEMM
/// (nullptr = the process default) — the engine passes its compile-time
/// selection so a plan never mixes backends.
void conv2d_image_forward(const float* x_img, const float* w_mat,
                          const float* bias, Act act, const ConvGeom& g,
                          size_t out_c, float* col_scratch, float* out_img,
                          const kernels::KernelBackend* be = nullptr);

/// Gradients of conv2d_forward. Accumulates into grad_w (shape of w_mat);
/// returns dL/dx. Pass grad_w = nullptr to skip the weight gradient.
Tensor conv2d_backward(const Tensor& x, const Tensor& w_mat,
                       const ConvGeom& g, size_t out_c,
                       const Tensor& grad_out, Tensor* grad_w);

}  // namespace alf
