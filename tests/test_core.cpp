#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>

#include "core/check.hpp"
#include "core/parallel.hpp"
#include "core/rng.hpp"
#include "core/table.hpp"

namespace alf {
namespace {

TEST(Check, ThrowsWithMessage) {
  try {
    ALF_CHECK(1 == 2) << "context " << 42;
    FAIL() << "expected throw";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("context 42"), std::string::npos);
  }
}

TEST(Check, PassesSilently) {
  EXPECT_NO_THROW(ALF_CHECK(true));
  EXPECT_NO_THROW(ALF_CHECK_EQ(3, 3));
}

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) any_diff |= (a.next_u64() != b.next_u64());
  EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIndexCoversAll) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform_index(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng rng(13);
  const int n = 20000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, NormalWithParams) {
  Rng rng(17);
  const int n = 20000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, PermutationIsValid) {
  Rng rng(23);
  const auto perm = rng.permutation(50);
  std::set<size_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 50u);
  EXPECT_EQ(*seen.rbegin(), 49u);
}

TEST(Rng, ForkIndependent) {
  Rng a(5);
  Rng child = a.fork();
  EXPECT_NE(a.next_u64(), child.next_u64());
}

// Regression: Box–Muller must redraw when uniform() returns exactly 0.0 —
// std::log(0.0) is -inf and one bad draw would poison e.g. a whole weight
// init. Hammer many independent streams and require every sample finite and
// well inside the theoretical tail for this many draws.
TEST(Rng, NormalNeverProducesInfOrNan) {
  for (uint64_t seed = 0; seed < 50; ++seed) {
    Rng rng(seed);
    for (int i = 0; i < 10000; ++i) {
      const double v = rng.normal();
      ASSERT_TRUE(std::isfinite(v)) << "seed=" << seed << " i=" << i;
      ASSERT_LT(std::abs(v), 9.0) << "seed=" << seed << " i=" << i;
    }
  }
}

TEST(Parallel, CoversEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> counts(5000);
  parallel_for(0, counts.size(), [&counts](size_t i) { counts[i]++; });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(Parallel, ChunkedCoversRange) {
  std::vector<std::atomic<int>> counts(4097);
  parallel_for_chunked(0, counts.size(), [&counts](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) counts[i]++;
  });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(Parallel, EmptyRangeIsNoop) {
  bool called = false;
  parallel_for(5, 5, [&called](size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(Parallel, ThreadOverrideRestores) {
  set_parallel_threads(2);
  EXPECT_EQ(parallel_threads(), 2);
  set_parallel_threads(0);
  EXPECT_GE(parallel_threads(), 1);
}

TEST(Parallel, ChunkedEmptyRangeIsNoop) {
  bool called = false;
  parallel_for_chunked(
      9, 9, [&called](size_t, size_t) { called = true; }, 1);
  EXPECT_FALSE(called);
}

TEST(Parallel, ChunkedRangeOfOne) {
  set_parallel_threads(8);
  std::atomic<int> calls{0};
  size_t got_lo = 99, got_hi = 0;
  parallel_for_chunked(
      7, 8,
      [&](size_t lo, size_t hi) {
        calls++;
        got_lo = lo;
        got_hi = hi;
      },
      1);
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(got_lo, 7u);
  EXPECT_EQ(got_hi, 8u);
  set_parallel_threads(0);
}

TEST(Parallel, MinPerWorkerBoundary) {
  set_parallel_threads(4);
  // total < min_per_worker: exactly one inline call over the whole range.
  {
    std::atomic<int> calls{0};
    std::vector<std::atomic<int>> counts(7);
    parallel_for_chunked(
        0, counts.size(),
        [&](size_t lo, size_t hi) {
          calls++;
          for (size_t i = lo; i < hi; ++i) counts[i]++;
        },
        /*min_per_worker=*/8);
    EXPECT_EQ(calls.load(), 1);
    for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
  }
  // total == min_per_worker: eligible for the pool; coverage stays exact.
  {
    std::vector<std::atomic<int>> counts(8);
    parallel_for_chunked(
        0, counts.size(),
        [&](size_t lo, size_t hi) {
          for (size_t i = lo; i < hi; ++i) counts[i]++;
        },
        /*min_per_worker=*/8);
    for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
  }
  set_parallel_threads(0);
}

// set_parallel_threads() larger than the range must clamp: every index is
// still covered exactly once with no empty chunk ever dispatched.
TEST(Parallel, MoreThreadsThanItems) {
  set_parallel_threads(32);
  std::vector<std::atomic<int>> counts(10);
  parallel_for_chunked(
      0, counts.size(),
      [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) counts[i]++;
      },
      /*min_per_worker=*/1);
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
  set_parallel_threads(0);
}

// A parallel_for issued from inside a worker (the conv2d pattern: batch
// parallelism outside, GEMMs inside) must run inline instead of deadlocking
// the pool's single-job dispatch.
TEST(Parallel, NestedParallelRunsInline) {
  set_parallel_threads(4);
  std::atomic<int> total{0};
  parallel_for_chunked(
      0, 8,
      [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) {
          parallel_for(0, 100, [&](size_t) { total++; });
        }
      },
      /*min_per_worker=*/1);
  EXPECT_EQ(total.load(), 800);
  set_parallel_threads(0);
}

// The pool is persistent: back-to-back regions with varying thread counts
// must each cover their range exactly (stale chunk state from a previous
// job must never leak into the next).
TEST(Parallel, RepeatedJobsStayExact) {
  for (int round = 0; round < 50; ++round) {
    set_parallel_threads(1 + round % 5);
    std::vector<std::atomic<int>> counts(997);
    parallel_for_chunked(
        0, counts.size(),
        [&](size_t lo, size_t hi) {
          for (size_t i = lo; i < hi; ++i) counts[i]++;
        },
        /*min_per_worker=*/1);
    for (const auto& c : counts) ASSERT_EQ(c.load(), 1) << "round " << round;
  }
  set_parallel_threads(0);
}

TEST(Table, AlignsAndFormats) {
  Table t("demo");
  t.set_header({"a", "bbbb"});
  t.add_row({"x", "1"});
  t.add_row({"yy", "2"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("bbbb"), std::string::npos);
  EXPECT_NE(s.find("yy"), std::string::npos);
}

TEST(Table, CsvRoundtrip) {
  Table t;
  t.set_header({"col1", "col2"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "col1,col2\n1,2\n");
}

TEST(Table, RowWidthMismatchThrows) {
  Table t;
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), CheckError);
}

TEST(Table, Formatters) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::fmt_int(42), "42");
  EXPECT_EQ(Table::fmt_pct(0.125, 1), "12.5%");
}

}  // namespace
}  // namespace alf
