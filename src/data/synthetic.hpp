// Synthetic image-classification datasets.
//
// CIFAR-10 / ImageNet are not available offline, so the experiments run on a
// deterministic, class-conditional synthetic task (documented in DESIGN.md).
// Each class is defined by oriented sinusoidal gratings plus class-specific
// blob locations and color balance; each sample perturbs phase, amplitude,
// translation and adds Gaussian noise. The task requires genuine spatial
// feature extraction (a linear model cannot solve it at the default noise),
// so compression-vs-accuracy trade-offs behave qualitatively like on CIFAR.
#pragma once

#include <cstdint>
#include <vector>

#include "core/rng.hpp"
#include "tensor/tensor.hpp"

namespace alf {

/// Generation parameters of a synthetic vision task.
struct DataConfig {
  size_t classes = 10;
  size_t channels = 3;
  size_t height = 32;
  size_t width = 32;
  float noise_std = 0.35f;   ///< additive Gaussian pixel noise
  int max_shift = 3;         ///< random translation in pixels (+-)
  uint64_t seed = 42;        ///< task seed (defines the class prototypes)

  /// CIFAR-10-like default.
  static DataConfig cifar_like();
  /// Reduced-scale ImageNet-like default (more classes, same resolution).
  static DataConfig imagenet_like();
};

/// A materialized, labelled image set (NCHW, float32 in ~[-1, 1]).
class SyntheticImageDataset {
 public:
  /// Generates `count` samples. `split_seed` decouples train/test streams of
  /// the same task (same prototypes, independent samples).
  SyntheticImageDataset(const DataConfig& config, size_t count,
                        uint64_t split_seed);

  size_t size() const { return labels_.size(); }
  const DataConfig& config() const { return config_; }

  /// Label of sample i.
  int label(size_t i) const { return labels_.at(i); }

  /// Copies samples `indices` into a batch tensor [B, C, H, W] and labels.
  void fill_batch(const std::vector<size_t>& indices, Tensor& x,
                  std::vector<int>& y) const;

  /// Convenience: materializes the whole set as one batch.
  void full_batch(Tensor& x, std::vector<int>& y) const;

 private:
  DataConfig config_;
  std::vector<float> pixels_;  // contiguous [N, C, H, W]
  std::vector<int> labels_;
  size_t sample_numel_ = 0;
};

/// Epoch iterator producing shuffled mini-batches.
class BatchIterator {
 public:
  BatchIterator(const SyntheticImageDataset& ds, size_t batch_size,
                uint64_t seed, bool shuffle = true);

  /// Starts a new epoch (reshuffles).
  void reset();

  /// Fills the next batch. Returns false when the epoch is exhausted.
  /// The final partial batch is dropped only if it would be empty.
  bool next(Tensor& x, std::vector<int>& y);

  size_t batches_per_epoch() const;

 private:
  const SyntheticImageDataset& ds_;
  size_t batch_size_;
  bool shuffle_;
  Rng rng_;
  std::vector<size_t> order_;
  size_t cursor_ = 0;
};

}  // namespace alf
