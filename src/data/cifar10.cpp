#include "data/cifar10.hpp"

#include <cstdlib>
#include <fstream>

#include "core/check.hpp"
#include "data/synthetic.hpp"

namespace alf {

namespace {

constexpr size_t kRecordBytes = 3073;  // 1 label + 3 * 32 * 32 pixels
constexpr size_t kImageBytes = 3072;
constexpr size_t kClasses = 10;

std::string cifar_dir() {
  const char* dir = std::getenv(kCifar10EnvVar);
  return dir != nullptr ? std::string(dir) : std::string();
}

/// Appends the records of `path` to an open batch; returns records read.
size_t append_file(const std::string& path, size_t max_records,
                   std::vector<float>& pixels, std::vector<int>& labels) {
  std::ifstream f(path, std::ios::binary | std::ios::ate);
  ALF_CHECK(f.good()) << "CIFAR-10: cannot open " << path;
  const std::streamoff bytes = f.tellg();
  ALF_CHECK(bytes > 0) << "CIFAR-10: empty file " << path;
  ALF_CHECK(static_cast<size_t>(bytes) % kRecordBytes == 0)
      << "CIFAR-10: " << path << " is " << bytes
      << " bytes, not a multiple of the 3073-byte record";
  size_t records = static_cast<size_t>(bytes) / kRecordBytes;
  if (max_records != 0) records = std::min(records, max_records);
  f.seekg(0);

  std::vector<unsigned char> rec(kRecordBytes);
  pixels.reserve(pixels.size() + records * kImageBytes);
  labels.reserve(labels.size() + records);
  for (size_t r = 0; r < records; ++r) {
    f.read(reinterpret_cast<char*>(rec.data()),
           static_cast<std::streamsize>(kRecordBytes));
    ALF_CHECK(f.good()) << "CIFAR-10: short read in " << path;
    ALF_CHECK(rec[0] < kClasses)
        << "CIFAR-10: label " << static_cast<int>(rec[0]) << " in " << path;
    labels.push_back(static_cast<int>(rec[0]));
    // Bytes are already channel-planar (R plane, G plane, B plane), which
    // is exactly NCHW for one image; scale to the [-1, 1] range the
    // synthetic task and the models use.
    for (size_t i = 0; i < kImageBytes; ++i)
      pixels.push_back(static_cast<float>(rec[1 + i]) / 127.5f - 1.0f);
  }
  return records;
}

Cifar10Batch from_raw(std::vector<float> pixels, std::vector<int> labels) {
  Cifar10Batch out;
  const size_t n = labels.size();
  out.images = Tensor({n, 3, 32, 32}, std::move(pixels));
  out.labels = std::move(labels);
  return out;
}

}  // namespace

Cifar10Batch load_cifar10_file(const std::string& path, size_t max_records) {
  std::vector<float> pixels;
  std::vector<int> labels;
  append_file(path, max_records, pixels, labels);
  return from_raw(std::move(pixels), std::move(labels));
}

bool cifar10_available() { return !cifar_dir().empty(); }

Cifar10Batch load_cifar10_split(bool train, size_t max_records) {
  const std::string dir = cifar_dir();
  ALF_CHECK(!dir.empty()) << "CIFAR-10: " << kCifar10EnvVar << " is not set";
  std::vector<float> pixels;
  std::vector<int> labels;
  if (train) {
    for (int b = 1; b <= 5; ++b) {
      if (max_records != 0 && labels.size() >= max_records) break;
      const size_t left =
          max_records == 0 ? 0 : max_records - labels.size();
      append_file(dir + "/data_batch_" + std::to_string(b) + ".bin", left,
                  pixels, labels);
    }
  } else {
    append_file(dir + "/test_batch.bin", max_records, pixels, labels);
  }
  return from_raw(std::move(pixels), std::move(labels));
}

Cifar10Batch load_cifar10_or_synthetic(bool train, size_t count,
                                       uint64_t seed) {
  ALF_CHECK(count > 0);
  if (cifar10_available()) return load_cifar10_split(train, count);
  DataConfig cfg = DataConfig::cifar_like();
  cfg.seed = seed;
  // Decoupled sample streams for the two splits, same class prototypes —
  // mirrors SyntheticImageDataset's train/test convention.
  SyntheticImageDataset ds(cfg, count, /*split_seed=*/train ? 1 : 2);
  Cifar10Batch out;
  out.synthetic = true;
  ds.full_batch(out.images, out.labels);
  return out;
}

}  // namespace alf
