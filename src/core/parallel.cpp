#include "core/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

namespace alf {
namespace {

std::atomic<int> g_threads{0};

int default_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return static_cast<int>(std::clamp(hw, 1u, 16u));
}

}  // namespace

int parallel_threads() {
  const int n = g_threads.load(std::memory_order_relaxed);
  return n > 0 ? n : default_threads();
}

void set_parallel_threads(int n) {
  g_threads.store(n, std::memory_order_relaxed);
}

void parallel_for_chunked(size_t begin, size_t end,
                          const std::function<void(size_t, size_t)>& fn,
                          size_t min_per_worker) {
  if (begin >= end) return;
  const size_t total = end - begin;
  const int workers =
      static_cast<int>(std::min<size_t>(total, parallel_threads()));
  if (workers <= 1 || total < std::max<size_t>(2, min_per_worker)) {
    fn(begin, end);
    return;
  }
  const size_t chunk = (total + workers - 1) / workers;
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (int w = 0; w < workers; ++w) {
    const size_t lo = begin + w * chunk;
    if (lo >= end) break;
    const size_t hi = std::min(end, lo + chunk);
    pool.emplace_back([&fn, lo, hi] { fn(lo, hi); });
  }
  for (auto& t : pool) t.join();
}

void parallel_for(size_t begin, size_t end,
                  const std::function<void(size_t)>& fn) {
  parallel_for_chunked(begin, end, [&fn](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) fn(i);
  });
}

}  // namespace alf
