#include "engine/plan_io.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <type_traits>

#include "core/check.hpp"
#include "kernels/backend.hpp"

namespace alf {

namespace {

using plan::FileHeader;
using plan::PlanIoError;
using plan::SectionRecord;
using plan::StepRecord;
using Code = plan::PlanIoError::Code;

// The CRCs are only well-defined if the records have no padding bytes and
// every field sits at its natural offset; any drift is a format change and
// must bump kFormatVersion, so make the compiler enforce the layout.
static_assert(sizeof(FileHeader) == 328, "blob format change: bump version");
static_assert(sizeof(StepRecord) == 176, "blob format change: bump version");
static_assert(sizeof(SectionRecord) == 64, "blob format change: bump version");
static_assert(std::has_unique_object_representations_v<FileHeader>);
static_assert(std::has_unique_object_representations_v<StepRecord>);
static_assert(std::has_unique_object_representations_v<SectionRecord>);

[[noreturn]] void io_fail(Code code, const std::string& what) {
  throw PlanIoError(code, what);
}

/// Munmap-on-scope-exit guard for the load path; release() hands the
/// mapping to the plan's WeightArena once validation succeeds.
struct Mapping {
  void* base = MAP_FAILED;
  size_t bytes = 0;

  ~Mapping() {
    if (base != MAP_FAILED) ::munmap(base, bytes);
  }

  void* release() {
    void* b = base;
    base = MAP_FAILED;
    return b;
  }
};

uint32_t plan_qbits(const Plan& p) {
  for (const Step& st : p.steps())
    if (st.quantized) return static_cast<uint32_t>(st.qbits);
  return 0;
}

void copy_name(char* dst, size_t cap, const std::string& src) {
  std::memset(dst, 0, cap);
  const size_t n = std::min(src.size(), cap - 1);
  std::memcpy(dst, src.data(), n);
}

}  // namespace

/// Serializer backdoor declared in plan.hpp: the only code that reads and
/// reconstructs Plan's private state outside Plan itself.
struct PlanIo {
  static void save(const Plan& p, const std::string& path);
  static std::shared_ptr<const Plan> load(const std::string& path);
};

void PlanIo::save(const Plan& p, const std::string& path) {
  const std::vector<Step>& steps = p.steps_;
  const std::vector<WeightSection>& sections = p.sections_;
  ALF_CHECK(p.backend_ != nullptr);

  // Meta region: step records, then the name blob, then section records.
  std::string names;
  std::vector<StepRecord> srecs(steps.size());
  for (size_t i = 0; i < steps.size(); ++i) {
    const Step& st = steps[i];
    StepRecord& r = srecs[i];
    std::memset(&r, 0, sizeof(r));
    r.kind = static_cast<uint32_t>(st.kind);
    r.act = static_cast<uint32_t>(st.act);
    r.in = st.in;
    r.out = st.out;
    r.in_sz = st.in_sz;
    r.out_sz = st.out_sz;
    r.g_in_c = st.geom.in_c;
    r.g_in_h = st.geom.in_h;
    r.g_in_w = st.geom.in_w;
    r.g_kernel = st.geom.kernel;
    r.g_stride = st.geom.stride;
    r.g_pad = st.geom.pad;
    r.out_c = st.out_c;
    r.window = st.window;
    r.in_features = st.in_features;
    r.out_features = st.out_features;
    r.name_off = names.size();
    r.name_len = st.name.size();
    names += st.name;
    r.qbits = st.qbits;
    r.shift_gemm = st.shift_gemm ? 1 : 0;
    r.quantized = st.quantized ? 1 : 0;
    r.in_nonneg = st.in_nonneg ? 1 : 0;
    // The per-step algorithm choice (v2). The actual backend name is
    // stored for every GEMM step — never the "" shorthand — so a blob is
    // self-describing even if the plan-level default changes meaning.
    if (st.be != nullptr)
      copy_name(r.backend_name, sizeof(r.backend_name), st.be->name);
    r.tile_mc = st.tile.mc;
    r.tile_kc = st.tile.kc;
    r.tile_nc = st.tile.nc;
    r.chunk = st.chunk;
  }
  std::vector<SectionRecord> xrecs(sections.size());
  for (size_t i = 0; i < sections.size(); ++i) {
    const WeightSection& sec = sections[i];
    SectionRecord& r = xrecs[i];
    std::memset(&r, 0, sizeof(r));
    r.step = sec.step;
    r.field = static_cast<uint32_t>(sec.field);
    r.offset = sec.offset;
    r.bytes = sec.bytes;
    r.elem_size = sec.elem_size;
    r.rank = sec.rank;
    for (size_t d = 0; d < TensorView::kMaxRank; ++d) r.dims[d] = sec.dims[d];
    r.align = static_cast<uint32_t>(kWeightAlign);
    r.crc32 = plan::crc32(p.arena_.data() + sec.offset,
                          static_cast<size_t>(sec.bytes));
  }

  FileHeader hdr;
  std::memset(&hdr, 0, sizeof(hdr));
  std::memcpy(hdr.magic, plan::kMagic, sizeof(hdr.magic));
  hdr.endian = plan::kEndianTag;
  hdr.version = plan::kFormatVersion;
  hdr.header_bytes = sizeof(FileHeader);
  hdr.panel_layout = kernels::kPanelLayoutVersion;
  copy_name(hdr.model_name, sizeof(hdr.model_name), p.name_);
  copy_name(hdr.backend_name, sizeof(hdr.backend_name), p.backend_->name);
  // A tuned plan may route individual steps through backends wider than
  // the plan's own, so the feature stamp is the union — a host must be
  // able to execute EVERY step, not just the default dispatch.
  hdr.cpu_features = p.backend_->required_features;
  for (const Step& st : steps)
    if (st.be != nullptr) hdr.cpu_features |= st.be->required_features;
  hdr.quantized = p.quant_ ? 1 : 0;
  hdr.qbits = plan_qbits(p);
  hdr.max_shift_h = kMaxShiftH;
  hdr.batch = p.batch_;
  hdr.in_c = p.in_c_;
  hdr.in_h = p.in_h_;
  hdr.in_w = p.in_w_;
  hdr.classes = p.classes_;
  hdr.slots = p.slots_;
  hdr.slot_stride = p.slot_stride_;
  hdr.col_off = p.col_off_;
  hdr.col_sz = p.col_sz_;
  hdr.res_off = p.res_off_;
  hdr.res_sz = p.res_sz_;
  hdr.nchunks = p.nchunks_;
  hdr.qws_sz = p.qws_sz_;
  hdr.qbs_sz = p.qbs_sz_;
  hdr.weight_align = static_cast<uint32_t>(kWeightAlign);
  hdr.nsteps = static_cast<uint32_t>(steps.size());
  hdr.nsections = static_cast<uint32_t>(sections.size());
  hdr.steps_off = sizeof(FileHeader);
  hdr.names_off = hdr.steps_off + srecs.size() * sizeof(StepRecord);
  hdr.names_bytes = names.size();
  // The name blob has arbitrary length; pad so the section records sit at
  // their natural 8-byte alignment (the loader reads them in place).
  hdr.sections_off = (hdr.names_off + hdr.names_bytes + 7) & ~uint64_t{7};
  const uint64_t meta_end = hdr.sections_off + xrecs.size() * sizeof(SectionRecord);
  hdr.arena_off = (meta_end + plan::kBlobPageAlign - 1) &
                  ~uint64_t{plan::kBlobPageAlign - 1};
  hdr.arena_bytes = p.arena_.bytes();
  hdr.file_bytes = hdr.arena_off + hdr.arena_bytes;

  // Assemble the pre-arena image once so the CRCs cover exactly what is
  // written.
  std::vector<uint8_t> head(static_cast<size_t>(hdr.arena_off), 0);
  if (!srecs.empty())
    std::memcpy(head.data() + hdr.steps_off, srecs.data(),
                srecs.size() * sizeof(StepRecord));
  if (!names.empty())
    std::memcpy(head.data() + hdr.names_off, names.data(), names.size());
  if (!xrecs.empty())
    std::memcpy(head.data() + hdr.sections_off, xrecs.data(),
                xrecs.size() * sizeof(SectionRecord));
  hdr.meta_crc = plan::crc32(head.data() + sizeof(FileHeader),
                             head.size() - sizeof(FileHeader));
  hdr.header_crc = 0;
  hdr.header_crc = plan::crc32(&hdr, sizeof(hdr));
  std::memcpy(head.data(), &hdr, sizeof(hdr));

  // Temp sibling + rename: a concurrent loader sees the old blob or the
  // new one, never a prefix.
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr)
    io_fail(Code::kOpen, "cannot create '" + tmp + "': " +
                             std::strerror(errno));
  const bool ok =
      std::fwrite(head.data(), 1, head.size(), f) == head.size() &&
      (hdr.arena_bytes == 0 ||
       std::fwrite(p.arena_.data(), 1, p.arena_.bytes(), f) ==
           p.arena_.bytes());
  const bool closed = std::fclose(f) == 0;
  if (!ok || !closed) {
    std::remove(tmp.c_str());
    io_fail(Code::kOpen, "short write to '" + tmp + "'");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    io_fail(Code::kOpen, "cannot rename '" + tmp + "' to '" + path + "': " +
                             std::strerror(errno));
  }
}

std::shared_ptr<const Plan> PlanIo::load(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0)
    io_fail(Code::kOpen,
            "cannot open '" + path + "': " + std::strerror(errno));
  struct stat st = {};
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    io_fail(Code::kOpen, "cannot stat '" + path + "': " + std::strerror(err));
  }
  const size_t file_bytes = static_cast<size_t>(st.st_size);
  if (file_bytes < sizeof(FileHeader)) {
    ::close(fd);
    io_fail(Code::kTruncated, "'" + path + "' is " +
                                  std::to_string(file_bytes) +
                                  " bytes, smaller than the header");
  }
  // PROT_READ + MAP_PRIVATE: never written, so physically identical to
  // MAP_SHARED (one page-cache copy across processes) while a stray write
  // faults. See the header comment in plan_io.hpp.
  Mapping map;
  map.bytes = file_bytes;
  map.base = ::mmap(nullptr, file_bytes, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping holds its own reference
  if (map.base == MAP_FAILED)
    io_fail(Code::kOpen, "cannot mmap '" + path + "': " +
                             std::strerror(errno));
  const uint8_t* blob = static_cast<const uint8_t*>(map.base);

  // --- Header validation (exact order documented in plan_io.hpp) ---------
  FileHeader hdr;
  std::memcpy(&hdr, blob, sizeof(hdr));
  if (std::memcmp(hdr.magic, plan::kMagic, sizeof(hdr.magic)) != 0)
    io_fail(Code::kBadMagic, "'" + path + "' is not a plan blob");
  if (hdr.endian != plan::kEndianTag)
    io_fail(Code::kBadHeader, "byte order differs from this host");
  if (hdr.header_bytes != sizeof(FileHeader))
    io_fail(Code::kBadHeader,
            "header size " + std::to_string(hdr.header_bytes) +
                " (this build expects " +
                std::to_string(sizeof(FileHeader)) + ")");
  if (hdr.version != plan::kFormatVersion)
    io_fail(Code::kBadVersion,
            "format version " + std::to_string(hdr.version) +
                " (this build reads version " +
                std::to_string(plan::kFormatVersion) + "); recompile the "
                "blob with alf_planc");
  FileHeader crc_check = hdr;
  crc_check.header_crc = 0;
  if (plan::crc32(&crc_check, sizeof(crc_check)) != hdr.header_crc)
    io_fail(Code::kBadCrc, "header checksum mismatch");
  if (hdr.file_bytes != file_bytes)
    io_fail(Code::kTruncated, "header claims " +
                                  std::to_string(hdr.file_bytes) +
                                  " bytes, file has " +
                                  std::to_string(file_bytes));
  if (hdr.panel_layout != kernels::kPanelLayoutVersion)
    io_fail(Code::kBadVersion,
            "packed-panel layout v" + std::to_string(hdr.panel_layout) +
                " (this build's kernels consume v" +
                std::to_string(kernels::kPanelLayoutVersion) + ")");
  if (hdr.max_shift_h != kMaxShiftH ||
      hdr.weight_align != kWeightAlign)
    io_fail(Code::kBadVersion, "packing-geometry stamps disagree with this "
                               "build (max_shift_h/weight_align)");
  const uint64_t steps_bytes = uint64_t{hdr.nsteps} * sizeof(StepRecord);
  const uint64_t sections_bytes =
      uint64_t{hdr.nsections} * sizeof(SectionRecord);
  if (hdr.nsteps == 0 || hdr.steps_off != sizeof(FileHeader) ||
      hdr.names_off != hdr.steps_off + steps_bytes ||
      hdr.sections_off !=
          ((hdr.names_off + hdr.names_bytes + 7) & ~uint64_t{7}) ||
      hdr.sections_off + sections_bytes > hdr.arena_off ||
      hdr.arena_off % plan::kBlobPageAlign != 0 ||
      hdr.arena_off + hdr.arena_bytes != hdr.file_bytes)
    io_fail(Code::kBadHeader, "region offsets are inconsistent");
  if (plan::crc32(blob + sizeof(FileHeader),
                  static_cast<size_t>(hdr.arena_off) - sizeof(FileHeader)) !=
      hdr.meta_crc)
    io_fail(Code::kBadCrc, "step/section table checksum mismatch");

  // --- Step records -------------------------------------------------------
  std::vector<Step> steps(hdr.nsteps);
  // Per-step backend names decode here but resolve below, after the
  // plan-level backend (the registry and feature checks live there).
  std::vector<std::string> step_backends(hdr.nsteps);
  const auto* srecs =
      reinterpret_cast<const StepRecord*>(blob + hdr.steps_off);
  const char* names = reinterpret_cast<const char*>(blob + hdr.names_off);
  for (size_t i = 0; i < steps.size(); ++i) {
    const StepRecord& r = srecs[i];
    Step& s = steps[i];
    if (r.kind > static_cast<uint32_t>(OpKind::kActivation))
      io_fail(Code::kBadSection,
              "step " + std::to_string(i) + ": unknown op kind");
    if (r.act > static_cast<uint32_t>(Act::kSigmoid))
      io_fail(Code::kBadSection,
              "step " + std::to_string(i) + ": unknown activation");
    if (r.name_off + r.name_len > hdr.names_bytes)
      io_fail(Code::kBadSection,
              "step " + std::to_string(i) + ": name outside the name blob");
    s.kind = static_cast<OpKind>(r.kind);
    s.act = static_cast<Act>(r.act);
    s.name.assign(names + r.name_off, static_cast<size_t>(r.name_len));
    s.in = r.in;
    s.out = r.out;
    s.in_sz = r.in_sz;
    s.out_sz = r.out_sz;
    s.geom = ConvGeom{r.g_in_c, r.g_in_h, r.g_in_w,
                      r.g_kernel, r.g_stride, r.g_pad};
    s.out_c = r.out_c;
    s.window = r.window;
    s.in_features = r.in_features;
    s.out_features = r.out_features;
    s.qbits = r.qbits;
    s.shift_gemm = r.shift_gemm != 0;
    s.quantized = r.quantized != 0;
    s.in_nonneg = r.in_nonneg != 0;
    if (std::memchr(r.backend_name, 0, sizeof(r.backend_name)) == nullptr)
      io_fail(Code::kBadSection,
              "step " + std::to_string(i) + ": unterminated backend name");
    step_backends[i] = r.backend_name;
    s.tile = kernels::TileParams{r.tile_mc, r.tile_kc, r.tile_nc};
    s.chunk = r.chunk;
  }

  // --- Section records: structural pass, then payload checksums ----------
  std::vector<WeightSection> sections(hdr.nsections);
  const auto* xrecs =
      reinterpret_cast<const SectionRecord*>(blob + hdr.sections_off);
  for (size_t i = 0; i < sections.size(); ++i) {
    const SectionRecord& r = xrecs[i];
    const std::string tag = "section " + std::to_string(i);
    if (r.step >= hdr.nsteps)
      io_fail(Code::kBadSection, tag + ": step index out of range");
    if (r.field >= kWeightFieldCount)
      io_fail(Code::kBadSection, tag + ": unknown weight field");
    if (r.elem_size != 1 && r.elem_size != sizeof(float))
      io_fail(Code::kBadSection, tag + ": unsupported element size");
    if (r.align != kWeightAlign || r.offset % kWeightAlign != 0)
      io_fail(Code::kBadSection, tag + ": misaligned section offset");
    if (r.offset + r.bytes > hdr.arena_bytes || r.offset + r.bytes < r.offset)
      io_fail(Code::kBadSection, tag + ": payload outside the arena");
    if (r.rank < 1 || r.rank > TensorView::kMaxRank)
      io_fail(Code::kBadSection, tag + ": rank outside [1, 3]");
    uint64_t numel = 1;
    for (uint32_t d = 0; d < r.rank; ++d) numel *= r.dims[d];
    if (numel * r.elem_size != r.bytes)
      io_fail(Code::kBadSection, tag + ": byte count disagrees with dims");
    WeightSection& sec = sections[i];
    sec.step = r.step;
    sec.field = static_cast<WeightField>(r.field);
    sec.offset = r.offset;
    sec.bytes = r.bytes;
    sec.elem_size = r.elem_size;
    sec.rank = r.rank;
    for (size_t d = 0; d < TensorView::kMaxRank; ++d) sec.dims[d] = r.dims[d];
  }
  const uint8_t* arena_base = blob + hdr.arena_off;
  for (size_t i = 0; i < sections.size(); ++i) {
    if (plan::crc32(arena_base + xrecs[i].offset,
                    static_cast<size_t>(xrecs[i].bytes)) != xrecs[i].crc32)
      io_fail(Code::kBadCrc,
              "section " + std::to_string(i) + " payload checksum mismatch");
  }

  // --- Host compatibility -------------------------------------------------
  if (std::memchr(hdr.backend_name, 0, sizeof(hdr.backend_name)) == nullptr ||
      std::memchr(hdr.model_name, 0, sizeof(hdr.model_name)) == nullptr)
    io_fail(Code::kBadHeader, "unterminated name field");
  const uint32_t missing = hdr.cpu_features & ~kernels::allowed_cpu_features();
  if (missing != 0)
    io_fail(Code::kCpuFeatures,
            std::string("blob was packed for CPU features this host lacks "
                        "(or has disabled): ") +
                kernels::cpu_feature_names(missing) + " — recompile with "
                "alf_planc on this host");
  const kernels::KernelBackend* backend =
      kernels::find_backend(hdr.backend_name);
  if (backend == nullptr)
    io_fail(Code::kBackend, std::string("kernel backend '") +
                                hdr.backend_name +
                                "' is not registered in this build");
  if ((hdr.quantized != 0) != backend->quantized_datapath)
    io_fail(Code::kBadHeader,
            "quantized flag disagrees with the stamped backend");
  // Per-step backends: every stamped name must be live in this registry
  // and executable on this host (the header's cpu_features union already
  // covered the features at save; re-check against the live registry so a
  // renamed or unregistered backend fails typed, not at dispatch).
  for (size_t i = 0; i < steps.size(); ++i) {
    Step& s = steps[i];
    if (step_backends[i].empty()) {
      s.be = backend;  // pre-tuner shorthand: the plan's own backend
      continue;
    }
    const kernels::KernelBackend* be = kernels::find_backend(step_backends[i]);
    if (be == nullptr)
      io_fail(Code::kBackend, "step " + std::to_string(i) +
                                  ": kernel backend '" + step_backends[i] +
                                  "' is not registered in this build");
    const uint32_t lacks =
        be->required_features & ~kernels::allowed_cpu_features();
    if (lacks != 0)
      io_fail(Code::kCpuFeatures,
              "step " + std::to_string(i) + ": backend '" + step_backends[i] +
                  "' needs CPU features this host lacks (or has disabled): " +
                  kernels::cpu_feature_names(lacks));
    s.be = be;
  }

  // --- Assemble -----------------------------------------------------------
  std::shared_ptr<Plan> p(new Plan());
  p->name_ = hdr.model_name;
  p->backend_ = backend;
  p->quant_ = hdr.quantized != 0;
  p->batch_ = hdr.batch;
  p->in_c_ = hdr.in_c;
  p->in_h_ = hdr.in_h;
  p->in_w_ = hdr.in_w;
  p->classes_ = hdr.classes;
  p->slots_ = hdr.slots;
  p->slot_stride_ = hdr.slot_stride;
  p->col_off_ = hdr.col_off;
  p->col_sz_ = hdr.col_sz;
  p->res_off_ = hdr.res_off;
  p->res_sz_ = hdr.res_sz;
  p->nchunks_ = hdr.nchunks;
  p->qws_sz_ = hdr.qws_sz;
  p->qbs_sz_ = hdr.qbs_sz;
  p->steps_ = std::move(steps);
  p->sections_ = std::move(sections);
  p->arena_ = WeightArena::adopt_mapping(
      map.release(), file_bytes, static_cast<size_t>(hdr.arena_off),
      static_cast<size_t>(hdr.arena_bytes));
  Plan::bind_weight_views(p->steps_, p->sections_, p->arena_);
  // The full static validator runs on EVERY loaded plan (not only debug
  // builds): the blob passed checksums, but geometry could still lie.
  p->verify();
  return p;
}

namespace plan {

namespace {

/// IEEE 802.3 reflected CRC-32 table, built once.
const uint32_t* crc_table() {
  static uint32_t table[256];
  static const bool init = [] {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      table[i] = c;
    }
    return true;
  }();
  (void)init;
  return table;
}

}  // namespace

uint32_t crc32(const void* data, size_t n, uint32_t seed) {
  const uint32_t* table = crc_table();
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

void restamp_header(void* blob, size_t bytes) {
  ALF_CHECK(bytes >= sizeof(FileHeader));
  FileHeader hdr;
  std::memcpy(&hdr, blob, sizeof(hdr));
  ALF_CHECK(hdr.arena_off >= sizeof(FileHeader) && hdr.arena_off <= bytes)
      << "restamp_header: arena_off outside the image";
  uint8_t* b = static_cast<uint8_t*>(blob);
  hdr.meta_crc = crc32(b + sizeof(FileHeader),
                       static_cast<size_t>(hdr.arena_off) - sizeof(FileHeader));
  hdr.header_crc = 0;
  hdr.header_crc = crc32(&hdr, sizeof(hdr));
  std::memcpy(blob, &hdr, sizeof(hdr));
}

void save(const Plan& plan, const std::string& path) {
  PlanIo::save(plan, path);
}

std::shared_ptr<const Plan> load(const std::string& path) {
  return PlanIo::load(path);
}

std::vector<std::pair<std::string, std::shared_ptr<const Plan>>> load_dir(
    const std::string& dir) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_directory(dir, ec))
    io_fail(Code::kOpen, "'" + dir + "' is not a readable directory");
  std::vector<std::string> paths;
  for (const fs::directory_entry& e : fs::directory_iterator(dir, ec)) {
    if (e.path().extension() == ".plan") paths.push_back(e.path().string());
  }
  if (ec) io_fail(Code::kOpen, "cannot list '" + dir + "': " + ec.message());
  std::sort(paths.begin(), paths.end());
  std::vector<std::pair<std::string, std::shared_ptr<const Plan>>> out;
  out.reserve(paths.size());
  for (const std::string& p : paths)
    out.emplace_back(fs::path(p).stem().string(), load(p));
  return out;
}

}  // namespace plan

}  // namespace alf
