// Convolution workload descriptor for the hardware model.
//
// Uses the Eyeriss/Timeloop naming convention:
//   R x S  filter kernel (height x width)
//   P x Q  output feature map (height x width)
//   C      input channels, M output channels, N batch.
#pragma once

#include <cstdint>
#include <string>

#include "models/cost.hpp"

namespace alf {

/// One convolutional layer as seen by the accelerator.
struct ConvWorkload {
  std::string name;
  size_t r = 3, s = 3;   ///< kernel
  size_t p = 1, q = 1;   ///< output H, W
  size_t c = 1, m = 1;   ///< channels in / out
  size_t n = 1;          ///< batch
  size_t stride = 1;

  size_t in_h() const { return (p - 1) * stride + r; }
  size_t in_w() const { return (q - 1) * stride + s; }

  /// Word counts (16-bit words, one word per element).
  unsigned long long ifmap_words() const {
    return static_cast<unsigned long long>(n) * c * in_h() * in_w();
  }
  unsigned long long weight_words() const {
    return static_cast<unsigned long long>(m) * c * r * s;
  }
  unsigned long long ofmap_words() const {
    return static_cast<unsigned long long>(n) * m * p * q;
  }
  unsigned long long macs() const {
    return static_cast<unsigned long long>(n) * m * c * p * q * r * s;
  }
};

/// Builds a workload from an analytic LayerCost entry (conv kinds only)
/// at the given batch size.
ConvWorkload workload_from_cost(const LayerCost& layer, size_t batch);

/// Extracts all conv workloads of a model cost at the given batch size
/// (conv, conv_code and conv_exp layers; FC layers are skipped, matching the
/// paper's "Conv layers only" accounting).
std::vector<ConvWorkload> workloads_from_model(const ModelCost& cost,
                                               size_t batch);

}  // namespace alf
