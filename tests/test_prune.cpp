#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.hpp"
#include "prune/lcnn.hpp"
#include "prune/structured.hpp"

namespace alf {
namespace {

Tensor make_filter_bank(std::vector<std::vector<float>> filters, size_t ci,
                        size_t k) {
  const size_t co = filters.size();
  Tensor w({co, ci, k, k});
  for (size_t f = 0; f < co; ++f)
    for (size_t j = 0; j < ci * k * k; ++j)
      w.at(f * ci * k * k + j) = filters[f][j];
  return w;
}

TEST(Saliency, MagnitudeOrdersByL1) {
  Tensor w = make_filter_bank({{1, 1, 1, 1},   // L1 = 4
                               {0, 0, 0, 0.5}, // L1 = 0.5
                               {2, -2, 2, -2}},// L1 = 8
                              1, 2);
  auto sal = filter_saliency(w, PruneRule::kMagnitude);
  EXPECT_GT(sal[2], sal[0]);
  EXPECT_GT(sal[0], sal[1]);
}

TEST(Saliency, FpgmPrunesNearGeometricMedian) {
  // Three filters: two extremes and one in the middle — the middle one has
  // the smallest total distance and must be pruned first.
  Tensor w = make_filter_bank({{0, 0, 0, 0},
                               {1, 1, 1, 1},
                               {2, 2, 2, 2}},
                              1, 2);
  auto sal = filter_saliency(w, PruneRule::kFpgm);
  EXPECT_LT(sal[1], sal[0]);
  EXPECT_LT(sal[1], sal[2]);
  auto keep = select_filters(w, 2.0 / 3.0, PruneRule::kFpgm);
  EXPECT_TRUE(keep[0]);
  EXPECT_FALSE(keep[1]);  // the median filter goes
  EXPECT_TRUE(keep[2]);
}

TEST(SelectFilters, KeepsAtLeastOne) {
  Rng rng(1);
  Tensor w({4, 2, 3, 3});
  for (size_t i = 0; i < w.numel(); ++i)
    w.at(i) = static_cast<float>(rng.uniform(-1, 1));
  auto keep = select_filters(w, 0.0, PruneRule::kMagnitude);
  size_t kept = 0;
  for (bool b : keep) kept += b;
  EXPECT_EQ(kept, 1u);
}

TEST(SelectFilters, KeepFractionRounding) {
  Rng rng(2);
  Tensor w({10, 1, 3, 3});
  for (size_t i = 0; i < w.numel(); ++i)
    w.at(i) = static_cast<float>(rng.uniform(-1, 1));
  auto keep = select_filters(w, 0.55, PruneRule::kMagnitude);
  size_t kept = 0;
  for (bool b : keep) kept += b;
  EXPECT_EQ(kept, 6u);  // ceil(5.5)
}

TEST(ZeroPrunedFilters, ZeroesExactlyPruned) {
  Rng rng(3);
  Conv2d conv("c", 2, 3, 3, 1, 1, Init::kHe, rng);
  zero_pruned_filters(conv, {true, false, true});
  const Tensor& w = conv.weight().value;
  const size_t fsize = 2 * 9;
  for (size_t j = 0; j < fsize; ++j) {
    EXPECT_FLOAT_EQ(w.at(1 * fsize + j), 0.0f);
    EXPECT_NE(w.at(0 * fsize + j), 0.0f);
  }
}

TEST(PrunePlan, KeptFraction) {
  PrunePlan plan;
  plan.keep.push_back({true, true, false, false});
  plan.keep.push_back({true, false});
  EXPECT_DOUBLE_EQ(plan.kept_fraction(), 3.0 / 6.0);
}

TEST(UniformPlan, SkipsFirstLayer) {
  Rng rng(4);
  Conv2d c1("c1", 3, 8, 3, 1, 1, Init::kHe, rng);
  Conv2d c2("c2", 8, 8, 3, 1, 1, Init::kHe, rng);
  std::vector<Conv2d*> convs{&c1, &c2};
  PrunePlan plan = uniform_plan(convs, 0.5, PruneRule::kMagnitude, true);
  size_t kept0 = 0;
  for (bool b : plan.keep[0]) kept0 += b;
  EXPECT_EQ(kept0, 8u);  // first conv untouched
  size_t kept1 = 0;
  for (bool b : plan.keep[1]) kept1 += b;
  EXPECT_EQ(kept1, 4u);
}

TEST(FilterPruningCost, ChainsChannelReduction) {
  CostBuilder b("v", 3, 8, 8);
  b.conv("c1", 16, 3, 1, 1);
  b.conv("c2", 32, 3, 1, 1);
  b.global_pool();
  b.fc("fc", 10);
  const ModelCost vanilla = b.finish();
  const ModelCost pruned = apply_filter_pruning(
      vanilla, {{"c1", 0.5}, {"c2", 0.5}}, "pruned");
  // c1: 3 -> 8 filters; c2 input channels follow: 8 -> 16 filters.
  EXPECT_EQ(pruned.layers[0].co, 8u);
  EXPECT_EQ(pruned.layers[1].ci, 8u);
  EXPECT_EQ(pruned.layers[1].co, 16u);
  // FC input shrinks with the last conv.
  EXPECT_EQ(pruned.layers[2].ci, 16u);
  EXPECT_LT(pruned.total_ops(), vanilla.total_ops());
}

TEST(FilterPruningCost, UnmatchedLayersKeepCost) {
  CostBuilder b("v", 3, 8, 8);
  b.conv("c1", 16, 3, 1, 1);
  const ModelCost vanilla = b.finish();
  const ModelCost same = apply_filter_pruning(vanilla, {}, "same");
  EXPECT_EQ(same.total_params(), vanilla.total_params());
}

TEST(Lcnn, ReconstructsClusteredFiltersExactly) {
  // Filters already form two tight clusters: k-means with D=2 must assign
  // them correctly and reconstruction error must be tiny.
  Tensor w = make_filter_bank({{1, 1, 1, 1},
                               {1.01f, 1, 1, 0.99f},
                               {-1, -1, -1, -1},
                               {-1, -1.01f, -0.99f, -1}},
                              1, 2);
  LcnnConfig cfg;
  cfg.dict_frac = 0.5;  // D = 2
  Rng rng(5);
  const LcnnLayerResult res = lcnn_compress_layer(w, cfg, rng);
  EXPECT_EQ(res.dictionary.dim(0), 2u);
  EXPECT_EQ(res.assignment[0], res.assignment[1]);
  EXPECT_EQ(res.assignment[2], res.assignment[3]);
  EXPECT_NE(res.assignment[0], res.assignment[2]);
  EXPECT_LT(res.recon_mse, 1e-3);
}

TEST(Lcnn, ApplySharesWeights) {
  Rng rng(6);
  Conv2d conv("c", 1, 4, 2, 1, 0, Init::kHe, rng);
  LcnnConfig cfg;
  cfg.dict_frac = 0.5;
  const LcnnLayerResult res =
      lcnn_compress_layer(conv.weight().value, cfg, rng);
  lcnn_apply(conv, res);
  // After sharing, filters with the same assignment are identical.
  const Tensor& w = conv.weight().value;
  const size_t fsize = 4;
  for (size_t a = 0; a < 4; ++a)
    for (size_t b = a + 1; b < 4; ++b) {
      if (res.assignment[a] != res.assignment[b]) continue;
      for (size_t j = 0; j < fsize; ++j)
        EXPECT_FLOAT_EQ(w.at(a * fsize + j), w.at(b * fsize + j));
    }
}

TEST(Lcnn, CostModelReflectsDictionary) {
  CostBuilder b("v", 16, 8, 8);
  b.conv("c", 64, 3, 1, 1);
  const ModelCost vanilla = b.finish();
  const ModelCost lc = apply_lcnn_cost(vanilla, {{"c", 16}}, 1, "lcnn");
  ASSERT_EQ(lc.layers.size(), 2u);
  EXPECT_EQ(lc.layers[0].params, 16ull * 16 * 9);
  EXPECT_EQ(lc.layers[1].params, 64ull);  // one lookup term per channel
  EXPECT_LT(lc.total_macs(), vanilla.total_macs());
}

}  // namespace
}  // namespace alf
