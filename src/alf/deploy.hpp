// Deployment stage (Sec. III-C).
//
// After training, each ALF block is post-processed into a dense pair of
// standard convolutions: the code conv keeps only the Ccode' non-zero
// filters of Wcode, and the 1x1 expansion conv drops the corresponding
// (now unused) input channels of Wexp. The autoencoder (Wenc, Wdec, M) is
// discarded. The deployed unit is bit-compatible with the training-time
// block in eval mode (zeroed filters contribute nothing), which
// verify_deployment() checks numerically.
#pragma once

#include <map>

#include "alf/alf_conv.hpp"
#include "engine/engine.hpp"
#include "models/cost.hpp"

namespace alf {

/// Structural summary of one compressed layer.
struct CompressedConvDesc {
  std::string name;
  size_t ci = 0;
  size_t co = 0;
  size_t ccode = 0;  ///< non-zero code filters after pruning
  size_t k = 1;
  size_t stride = 1;
  size_t pad = 0;
  size_t ccode_max = 0;  ///< Eq. 2 efficiency bound
};

/// Descriptor of `block` in its current training state.
CompressedConvDesc describe_block(const AlfConv& block);

/// Descriptors of all ALF blocks of `model` in build order.
std::vector<CompressedConvDesc> collect_compressed_descs(Sequential& model);

/// Indices of the code filters kept at deployment: the non-zero entries of
/// Mprune, or the single largest-|m| filter if everything was pruned (so
/// the layer stays functional). Shared by make_deployed_unit and the
/// engine's AlfConv lowering.
std::vector<size_t> deployed_filters(const AlfConv& block);

/// Builds the dense deployed unit: Conv(ci -> ccode') [+ sigma_inter]
/// -> Conv1x1(ccode' -> co), with weights copied from the trained block.
/// Blocks with BN_inter enabled are not exportable (training-only config).
/// If every code filter was pruned, the single surviving filter with the
/// largest |mask| is retained so the layer stays functional.
LayerPtr make_deployed_unit(AlfConv& block, Rng& rng);

/// Compiles a model for batched serving: every AlfConv is lowered to its
/// deployed dense pair, BatchNorm is folded into the preceding conv, and
/// the result is a flat plan executing against a preallocated arena (see
/// engine/engine.hpp). The model may mix plain convs and ALF blocks.
Engine compile_deployed(const Sequential& model, size_t batch, size_t in_c,
                        size_t in_hw);

/// Max |output(deployed) - output(block in eval mode)| over a test input —
/// the structural-consistency check of the deployment stage.
float deployment_error(AlfConv& block, const Tensor& input, Rng& rng);

/// Rewrites a vanilla analytic cost with ALF compression applied: every conv
/// layer whose name appears in `ccode_by_name` becomes a code conv with
/// ccode filters plus a 1x1 expansion. Other layers are unchanged.
ModelCost apply_alf_compression(const ModelCost& vanilla,
                                const std::map<std::string, size_t>& ccode_by_name,
                                const std::string& new_name);

/// Same, but with per-layer *fractions* of remaining filters (used to carry
/// sparsity patterns measured at reduced scale onto a full-scale cost model).
/// ccode = max(1, round(frac * Co)). Layers absent from the map keep their
/// vanilla form.
ModelCost apply_alf_fractions(const ModelCost& vanilla,
                              const std::map<std::string, double>& frac_by_name,
                              const std::string& new_name);

}  // namespace alf
