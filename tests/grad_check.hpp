// Finite-difference gradient checking for Layer implementations.
//
// Builds the scalar loss L = sum_i coeff_i * layer(x)_i with fixed random
// coefficients, computes analytic gradients through Layer::backward, and
// compares against central finite differences for both the input and every
// parameter.
#pragma once

#include <cmath>

#include "core/rng.hpp"
#include "nn/layer.hpp"

namespace alf::testing {

struct GradCheckResult {
  double max_abs_err = 0.0;   ///< max |analytic - numeric|
  double max_rel_err = 0.0;   ///< max error relative to max(1e-3, |numeric|)
};

/// Loss coefficients for a given output shape.
inline Tensor random_coeffs(const Shape& shape, Rng& rng) {
  Tensor c(shape);
  for (size_t i = 0; i < c.numel(); ++i)
    c.at(i) = static_cast<float>(rng.uniform(-1.0, 1.0));
  return c;
}

inline double weighted_sum(const Tensor& y, const Tensor& coeff) {
  double s = 0.0;
  for (size_t i = 0; i < y.numel(); ++i)
    s += static_cast<double>(y.at(i)) * coeff.at(i);
  return s;
}

/// Checks dL/dx and dL/dparam for `layer` at input `x`.
/// `eps` is the finite-difference step; returns the worst errors seen.
inline GradCheckResult grad_check(Layer& layer, const Tensor& x, Rng& rng,
                                  float eps = 1e-2f) {
  GradCheckResult res;
  Tensor input = x;
  Tensor y = layer.forward(input, /*train=*/true);
  const Tensor coeff = random_coeffs(y.shape(), rng);

  layer.zero_grad();
  Tensor grad_x = layer.backward(coeff);

  auto update = [&res](double analytic, double numeric) {
    const double abs_err = std::abs(analytic - numeric);
    res.max_abs_err = std::max(res.max_abs_err, abs_err);
    const double denom = std::max(1e-3, std::abs(numeric));
    res.max_rel_err = std::max(res.max_rel_err, abs_err / denom);
  };

  // Input gradient.
  for (size_t i = 0; i < input.numel(); ++i) {
    const float orig = input.at(i);
    input.at(i) = orig + eps;
    const double lp = weighted_sum(layer.forward(input, true), coeff);
    input.at(i) = orig - eps;
    const double lm = weighted_sum(layer.forward(input, true), coeff);
    input.at(i) = orig;
    update(grad_x.at(i), (lp - lm) / (2.0 * eps));
  }

  // Parameter gradients (analytic grads were accumulated above; a fresh
  // forward pass uses the unchanged parameter values).
  for (Param* p : layer.params()) {
    for (size_t i = 0; i < p->value.numel(); ++i) {
      const float orig = p->value.at(i);
      p->value.at(i) = orig + eps;
      const double lp = weighted_sum(layer.forward(input, true), coeff);
      p->value.at(i) = orig - eps;
      const double lm = weighted_sum(layer.forward(input, true), coeff);
      p->value.at(i) = orig;
      update(p->grad.at(i), (lp - lm) / (2.0 * eps));
    }
  }
  // Restore caches to a consistent state.
  layer.forward(input, true);
  return res;
}

/// Random NCHW tensor in [-1, 1].
inline Tensor random_input(Shape shape, Rng& rng) {
  Tensor x(std::move(shape));
  for (size_t i = 0; i < x.numel(); ++i)
    x.at(i) = static_cast<float>(rng.uniform(-1.0, 1.0));
  return x;
}

}  // namespace alf::testing
